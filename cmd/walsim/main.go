// Command walsim explores WAL commit modes interactively: it appends a
// stream of records under a chosen mode and log device and reports
// per-commit latency, throughput, flush counts and log-device WAF —
// the paper's Fig 5 commit modes made observable.
//
// Usage:
//
//	walsim [-mode sync|async|ba|pm] [-device dc|ull|2b]
//	       [-records n] [-size bytes] [-clients n]
//	       [-segmented] [-segbytes n] [-ring n] [-checkpoint-every n]
//
// -segmented runs the stream through the segmented WAL lifecycle
// (wal.Segmented: rotation, group commit, checkpoint truncation)
// instead of the single-file log; it supports sync and ba modes.
// -segbytes sizes each segment file, -ring the slot ring, and
// -checkpoint-every issues a checkpoint every n commits (0 = never) —
// the report then includes rotation/checkpoint/truncation/group-flush
// counts and latencies.
package main

import (
	"flag"
	"fmt"
	"os"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/histo"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

func main() {
	mode := flag.String("mode", "ba", "commit mode: sync, async, ba, pm")
	dev := flag.String("device", "2b", "log device: dc, ull, 2b")
	records := flag.Int("records", 1000, "records to append+commit")
	size := flag.Int("size", 128, "record payload bytes")
	clients := flag.Int("clients", 4, "concurrent committers")
	segmented := flag.Bool("segmented", false, "use the segmented WAL lifecycle (sync/ba modes)")
	segbytes := flag.Int64("segbytes", 1<<20, "segment file bytes (with -segmented)")
	ring := flag.Int("ring", 4, "segment ring slots (with -segmented)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint every n commits, truncating covered segments (0 = never; with -segmented)")
	flag.Parse()

	var cm wal.CommitMode
	switch *mode {
	case "sync":
		cm = wal.Sync
	case "async":
		cm = wal.Async
	case "ba":
		cm = wal.BA
	case "pm":
		cm = wal.PM
	default:
		fmt.Fprintf(os.Stderr, "walsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if cm == wal.BA && *dev != "2b" {
		fmt.Fprintln(os.Stderr, "walsim: BA mode requires -device 2b")
		os.Exit(2)
	}
	if *segmented && cm != wal.Sync && cm != wal.BA {
		fmt.Fprintln(os.Stderr, "walsim: -segmented supports sync and ba modes only")
		os.Exit(2)
	}

	env := sim.NewEnv()
	var fs *vfs.FS
	var ssd *core.TwoBSSD
	switch *dev {
	case "dc":
		fs = vfs.New(device.New(env, device.DCSSD()))
	case "ull":
		fs = vfs.New(device.New(env, device.ULLSSD()))
	case "2b":
		ssd = core.New(env, core.DefaultConfig())
		fs = vfs.New(ssd.Device())
	default:
		fmt.Fprintf(os.Stderr, "walsim: unknown device %q\n", *dev)
		os.Exit(2)
	}

	var l *wal.Log
	var sl *wal.Segmented
	h := &histo.H{}
	commits := 0
	env.Go("setup", func(p *sim.Proc) {
		var err error
		if *segmented {
			cfg := wal.SegConfig{
				Mode: cm, FS: fs, Name: "walsim.seg",
				SegmentFileBytes: *segbytes, Ring: *ring,
			}
			if cm == wal.BA {
				cfg.SSD = ssd
				cfg.EIDs = []core.EID{0, 1}
				// Pin window: half the BA buffer, clamped to the segment
				// file (small -segbytes values pin whole files).
				inner := ssd.Config().BABufferBytes / 2
				if int64(inner) > *segbytes {
					inner = int(*segbytes)
				}
				cfg.InnerSegmentBytes = inner
				cfg.DoubleBuffer = true
			}
			if sl, err = wal.OpenSegmented(env, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "walsim: %v\n", err)
				os.Exit(2)
			}
		} else {
			f, ferr := fs.Create("walsim.log", 64<<20)
			if ferr != nil {
				panic(ferr)
			}
			cfg := wal.Config{Mode: cm, File: f}
			if cm == wal.BA {
				cfg.SSD = ssd
				cfg.EIDs = []core.EID{0, 1}
				cfg.SegmentBytes = ssd.Config().BABufferBytes / 2
				cfg.DoubleBuffer = true
			}
			if l, err = wal.Open(env, cfg); err != nil {
				panic(err)
			}
		}
		per := *records / *clients
		for c := 0; c < *clients; c++ {
			env.Go(fmt.Sprintf("client%d", c), func(w *sim.Proc) {
				payload := make([]byte, *size)
				for i := 0; i < per; i++ {
					start := env.Now()
					var lsn wal.LSN
					var err error
					if sl != nil {
						lsn, err = sl.Append(w, payload)
					} else {
						lsn, err = l.Append(w, payload)
					}
					if err != nil {
						panic(err)
					}
					if sl != nil {
						err = sl.Commit(w, lsn)
					} else {
						err = l.Commit(w, lsn)
					}
					if err != nil {
						panic(err)
					}
					h.Observe(sim.Duration(env.Now() - start))
					commits++
					if sl != nil && *ckptEvery > 0 && commits%*ckptEvery == 0 {
						if err := sl.Checkpoint(w, lsn); err != nil {
							panic(err)
						}
					}
				}
			})
		}
	})
	env.Run()

	elapsed := sim.Duration(env.Now())
	fstats := fs.Device().FTL().Stats()
	if sl != nil {
		st := sl.Stats()
		first, cur := sl.Segments()
		fmt.Printf("mode=%s device=%s clients=%d records=%d size=%dB segmented ring=%d segbytes=%d\n",
			cm, *dev, *clients, *records, *size, *ring, *segbytes)
		fmt.Printf("  virtual elapsed:   %v\n", elapsed)
		fmt.Printf("  throughput:        %.0f commits/s\n", float64(st.Commits)/elapsed.Seconds())
		fmt.Printf("  avg commit:        %v\n", st.CommitTime/sim.Duration(max(st.Commits, 1)))
		fmt.Printf("  group flushes:     %d (%.2f commits/flush)\n", st.GroupFlushes,
			float64(st.Commits)/float64(max(st.GroupFlushes, 1)))
		fmt.Printf("  rotations:         %d (avg %v)\n", st.Rotations,
			st.RotateTime/sim.Duration(max(st.Rotations, 1)))
		fmt.Printf("  checkpoints:       %d (avg %v), truncated %d segments\n",
			st.Checkpoints, st.CheckpointTime/sim.Duration(max(st.Checkpoints, 1)), st.Truncations)
		fmt.Printf("  segments live:     [%d, %d], retained floor LSN %d\n", first, cur, sl.RetainedLSN())
		fmt.Printf("  frontiers:         tail=%d durable=%d checkpoint=%d\n",
			sl.TailLSN(), sl.DurableLSN(), sl.CheckpointLSN())
		fmt.Printf("  log-device NAND:   %d page programs (WAF %.2f)\n",
			fstats.NandPagewrites, fstats.WAF())
		fmt.Printf("  persist latency:   %s\n", h)
		fmt.Print(h.Bars(40))
		return
	}
	st := l.Stats()
	fmt.Printf("mode=%s device=%s clients=%d records=%d size=%dB\n",
		cm, *dev, *clients, st.Appends, *size)
	fmt.Printf("  virtual elapsed:   %v\n", elapsed)
	fmt.Printf("  throughput:        %.0f commits/s\n", float64(st.Commits)/elapsed.Seconds())
	fmt.Printf("  avg commit:        %v\n", st.AvgCommit())
	fmt.Printf("  flushes:           %d (%.2f commits/flush)\n", st.Flushes,
		float64(st.Commits)/float64(max(st.Flushes, 1)))
	fmt.Printf("  bytes appended:    %d (pad %d)\n", st.BytesAppended, st.PadBytes)
	fmt.Printf("  durable offset:    %d of %d appended\n", l.DurableOff(), l.AppendOff())
	fmt.Printf("  log-device NAND:   %d page programs (WAF %.2f)\n",
		fstats.NandPagewrites, fstats.WAF())
	fmt.Printf("  persist latency:   %s\n", h)
	fmt.Print(h.Bars(40))
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
