// Command walsim explores WAL commit modes interactively: it appends a
// stream of records under a chosen mode and log device and reports
// per-commit latency, throughput, flush counts and log-device WAF —
// the paper's Fig 5 commit modes made observable.
//
// Usage:
//
//	walsim [-mode sync|async|ba|pm] [-device dc|ull|2b]
//	       [-records n] [-size bytes] [-clients n]
package main

import (
	"flag"
	"fmt"
	"os"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/histo"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

func main() {
	mode := flag.String("mode", "ba", "commit mode: sync, async, ba, pm")
	dev := flag.String("device", "2b", "log device: dc, ull, 2b")
	records := flag.Int("records", 1000, "records to append+commit")
	size := flag.Int("size", 128, "record payload bytes")
	clients := flag.Int("clients", 4, "concurrent committers")
	flag.Parse()

	var cm wal.CommitMode
	switch *mode {
	case "sync":
		cm = wal.Sync
	case "async":
		cm = wal.Async
	case "ba":
		cm = wal.BA
	case "pm":
		cm = wal.PM
	default:
		fmt.Fprintf(os.Stderr, "walsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if cm == wal.BA && *dev != "2b" {
		fmt.Fprintln(os.Stderr, "walsim: BA mode requires -device 2b")
		os.Exit(2)
	}

	env := sim.NewEnv()
	var fs *vfs.FS
	var ssd *core.TwoBSSD
	switch *dev {
	case "dc":
		fs = vfs.New(device.New(env, device.DCSSD()))
	case "ull":
		fs = vfs.New(device.New(env, device.ULLSSD()))
	case "2b":
		ssd = core.New(env, core.DefaultConfig())
		fs = vfs.New(ssd.Device())
	default:
		fmt.Fprintf(os.Stderr, "walsim: unknown device %q\n", *dev)
		os.Exit(2)
	}

	var l *wal.Log
	h := &histo.H{}
	env.Go("setup", func(p *sim.Proc) {
		f, err := fs.Create("walsim.log", 64<<20)
		if err != nil {
			panic(err)
		}
		cfg := wal.Config{Mode: cm, File: f}
		if cm == wal.BA {
			cfg.SSD = ssd
			cfg.EIDs = []core.EID{0, 1}
			cfg.SegmentBytes = ssd.Config().BABufferBytes / 2
			cfg.DoubleBuffer = true
		}
		l, err = wal.Open(env, cfg)
		if err != nil {
			panic(err)
		}
		per := *records / *clients
		for c := 0; c < *clients; c++ {
			env.Go(fmt.Sprintf("client%d", c), func(w *sim.Proc) {
				payload := make([]byte, *size)
				for i := 0; i < per; i++ {
					start := env.Now()
					lsn, err := l.Append(w, payload)
					if err != nil {
						panic(err)
					}
					if err := l.Commit(w, lsn); err != nil {
						panic(err)
					}
					h.Observe(sim.Duration(env.Now() - start))
				}
			})
		}
	})
	env.Run()

	st := l.Stats()
	elapsed := sim.Duration(env.Now())
	fmt.Printf("mode=%s device=%s clients=%d records=%d size=%dB\n",
		cm, *dev, *clients, st.Appends, *size)
	fmt.Printf("  virtual elapsed:   %v\n", elapsed)
	fmt.Printf("  throughput:        %.0f commits/s\n", float64(st.Commits)/elapsed.Seconds())
	fmt.Printf("  avg commit:        %v\n", st.AvgCommit())
	fmt.Printf("  flushes:           %d (%.2f commits/flush)\n", st.Flushes,
		float64(st.Commits)/float64(max(st.Flushes, 1)))
	fmt.Printf("  bytes appended:    %d (pad %d)\n", st.BytesAppended, st.PadBytes)
	fmt.Printf("  durable offset:    %d of %d appended\n", l.DurableOff(), l.AppendOff())
	fstats := fs.Device().FTL().Stats()
	fmt.Printf("  log-device NAND:   %d page programs (WAF %.2f)\n",
		fstats.NandPagewrites, fstats.WAF())
	fmt.Printf("  persist latency:   %s\n", h)
	fmt.Print(h.Bars(40))
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
