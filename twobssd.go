// Package twobssd is the public API of the 2B-SSD reproduction: a
// dual, byte- and block-addressable solid-state drive (Bae et al.,
// ISCA 2018) and the simulated storage stack it runs on.
//
// The package re-exports the stable surface of the internal packages
// so downstream code can build against one import:
//
//	env := twobssd.NewEnv()
//	ssd := twobssd.New(env, twobssd.DefaultConfig())
//	fs := twobssd.NewFS(ssd.Device())
//
//	env.Go("app", func(p *twobssd.Proc) {
//	    f, _ := fs.Create("wal.log", 16<<20)
//	    ssd.BAPin(p, 0, 0, f.LBA(0), 4)      // bind file pages to the BA-buffer
//	    ssd.Mmio().Write(p, 0, []byte("log")) // 630ns-class MMIO store
//	    ssd.BASync(p, 0)                      // clflush+mfence+write-verify read
//	    ssd.BAFlush(p, 0)                     // internal datapath to NAND
//	})
//	env.Run()
//
// Everything runs in deterministic virtual time: the same program
// yields the same nanosecond-exact results on every machine. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results.
package twobssd

import (
	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// Simulation kernel.
type (
	// Env is the discrete-event simulation environment: a virtual clock
	// plus the processes and resources scheduled on it.
	Env = sim.Env
	// Proc is one simulation process; every timed operation takes one.
	Proc = sim.Proc
	// Duration is a span of virtual time in nanoseconds.
	Duration = sim.Duration
	// Time is an absolute virtual timestamp.
	Time = sim.Time
)

// Virtual time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEnv creates a simulation environment with the clock at zero.
func NewEnv() *Env { return sim.NewEnv() }

// The 2B-SSD and its configuration.
type (
	// SSD is the dual byte-/block-addressable drive (the paper's
	// contribution): BA_PIN/BA_FLUSH/BA_SYNC/BA_GET_ENTRY_INFO/
	// BA_READ_DMA, the LBA checker, the read DMA engine, and the
	// capacitor-backed recovery manager.
	SSD = core.TwoBSSD
	// Config assembles an SSD (device profile, BA-buffer geometry,
	// MMIO model, capacitors).
	Config = core.Config
	// Spec mirrors Table I of the paper.
	Spec = core.Spec
	// EID names a BA-buffer mapping-table entry.
	EID = core.EID
	// Entry is one mapping-table row.
	Entry = core.Entry
	// DumpReport describes one power-loss event.
	DumpReport = core.DumpReport
)

// New builds a 2B-SSD on the environment.
func New(env *Env, cfg Config) *SSD { return core.New(env, cfg) }

// DefaultConfig returns the calibrated Table I prototype (8 MB
// BA-buffer, 8 entries, ULL-SSD base device, 3x270 µF capacitors).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultSpec returns the paper's Table I values.
func DefaultSpec() Spec { return core.DefaultSpec() }

// Block devices and the comparison profiles.
type (
	// Device is a simulated NVMe block SSD.
	Device = device.Device
	// DeviceProfile calibrates one device model.
	DeviceProfile = device.Profile
	// LBA is a logical page address.
	LBA = ftl.LBA
)

// NewDevice builds a standalone block device from a profile.
func NewDevice(env *Env, p DeviceProfile) *Device { return device.New(env, p) }

// DCSSD returns the datacenter-class comparison profile (PM963-like).
func DCSSD() DeviceProfile { return device.DCSSD() }

// ULLSSD returns the ultra-low-latency comparison profile (Z-SSD-like).
func ULLSSD() DeviceProfile { return device.ULLSSD() }

// File layer.
type (
	// FS is a flat namespace of contiguous files on a block device.
	FS = vfs.FS
	// File is one contiguous file; its byte ranges map 1:1 onto LBA
	// ranges, which is what BA_PIN consumes.
	File = vfs.File
)

// NewFS formats an empty filesystem over a device.
func NewFS(d *Device) *FS { return vfs.New(d) }

// Write-ahead logging (the paper's case study).
type (
	// WAL is a write-ahead log with the paper's commit modes.
	WAL = wal.Log
	// WALConfig assembles a log.
	WALConfig = wal.Config
	// CommitMode selects the durability protocol of Fig 5.
	CommitMode = wal.CommitMode
	// LSN is a log sequence number.
	LSN = wal.LSN
)

// The commit modes: Fig 5's three, plus the Fig 10 heterogeneous-memory
// PM mode and the Section VII PMR comparison mode.
const (
	SyncCommit  = wal.Sync
	AsyncCommit = wal.Async
	BACommit    = wal.BA
	PMCommit    = wal.PM
	PMRCommit   = wal.PMR
)

// OpenWAL opens a write-ahead log.
func OpenWAL(env *Env, cfg WALConfig) (*WAL, error) { return wal.Open(env, cfg) }

// Observability.
type (
	// Observability is one environment's metrics registry plus (when
	// enabled) its virtual-time span tracer.
	Observability = obs.Set
	// MetricsRegistry holds named counters, gauges and latency
	// histograms; every stack component registers its series here.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a stable JSON/text-serializable registry view.
	MetricsSnapshot = obs.Snapshot
	// Tracer records virtual-time spans and exports Chrome trace-event
	// JSON (Perfetto). A nil *Tracer is the zero-overhead disabled path.
	Tracer = obs.Tracer
	// ObsCollector aggregates metrics, traces and timelines across
	// environments.
	ObsCollector = obs.Collector
	// Sampler snapshots a registry at a fixed virtual-time cadence into
	// ring-buffered, delta-encoded timeline windows (Observe(env).
	// StartSampler).
	Sampler = obs.Sampler
	// Timeline is the exported metric timeline: per-window counter
	// rates, sampled gauges and windowed histogram percentiles, merged
	// deterministically across environments.
	Timeline = obs.Timeline
	// TimelinePoint is one timeline window.
	TimelinePoint = obs.TimelinePoint
	// FlightDump is the post-mortem artifact of the always-on flight
	// recorder: the last spans before a failure plus metrics at that
	// moment (Observe(env).EnableFlightRecorder / FlightDump).
	FlightDump = obs.FlightDump
	// LiveServer serves a running simulation over HTTP: Prometheus
	// text exposition, timeline JSON, and SSE progress.
	LiveServer = obs.LiveServer
)

// Observe returns the environment's observability set. Metrics are
// always live; call EnableTracing on the result (before building the
// stack) to record spans:
//
//	o := twobssd.Observe(env)
//	o.EnableTracing()
//	ssd := twobssd.New(env, twobssd.DefaultConfig())
//	// ... run workload ...
//	o.Snapshot().WriteText(os.Stdout)
//	o.Tracer().WriteJSON(traceFile)
func Observe(env *Env) *Observability { return obs.Of(env) }

// NewObsCollector returns a collector that, once Install()ed, captures
// every environment the process subsequently creates — how bench2b's
// -metrics/-trace/-timeline flags observe experiments that build many
// environments internally. Call EnableSampling before Install to also
// record metric timelines.
func NewObsCollector(tracing bool) *ObsCollector { return obs.NewCollector(tracing) }

// NewLiveServer returns an HTTP serving layer for live observability;
// Attach it to a collector and mount Handler() — what bench2b -listen
// does.
func NewLiveServer() *LiveServer { return obs.NewLiveServer() }
