// Package twobssd's root benchmarks wrap every reproduced table and
// figure as a testing.B benchmark (one per paper artifact, per the
// DESIGN.md experiment index), plus the ablations. Each iteration
// regenerates the artifact on the simulated stack; the reported
// wall-clock time is the cost of the simulation itself, while the
// virtual-time results inside are deterministic.
//
// Run: go test -bench=. -benchmem
package twobssd_test

import (
	"io"
	"testing"

	"twobssd/internal/bench"
)

// benchScale keeps testing.B iterations affordable while preserving
// every shape the assertions in internal/bench check.
var benchScale = bench.Scale{LatReps: 3, AppOps: 1000, Clients: 4, Records: 300, Nodes: 150}

func benchTable(b *testing.B, gen func(bench.Scale) *bench.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab := gen(benchScale)
		tab.Print(io.Discard)
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable1Spec regenerates Table I (device specification).
func BenchmarkTable1Spec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Spec().Print(io.Discard)
	}
}

// BenchmarkFig7aReadLatency regenerates Fig 7(a): read latency versus
// request size for DC-SSD, ULL-SSD, 2B-SSD MMIO and read DMA.
func BenchmarkFig7aReadLatency(b *testing.B) { benchTable(b, bench.Fig7a) }

// BenchmarkFig7bWriteLatency regenerates Fig 7(b): write latency versus
// request size, including persistent MMIO (BA_SYNC).
func BenchmarkFig7bWriteLatency(b *testing.B) { benchTable(b, bench.Fig7b) }

// BenchmarkFig8aReadBandwidth regenerates Fig 8(a): QD1 read bandwidth
// versus request size, block I/O versus the internal datapath.
func BenchmarkFig8aReadBandwidth(b *testing.B) { benchTable(b, bench.Fig8a) }

// BenchmarkFig8bWriteBandwidth regenerates Fig 8(b): QD1 write
// bandwidth versus request size.
func BenchmarkFig8bWriteBandwidth(b *testing.B) { benchTable(b, bench.Fig8b) }

// BenchmarkFig9PGLinkbench regenerates the PostgreSQL/Linkbench panel
// of Fig 9 (pglite engine).
func BenchmarkFig9PGLinkbench(b *testing.B) { benchTable(b, bench.Fig9PG) }

// BenchmarkFig9LSMYCSB regenerates the RocksDB/YCSB-A panel of Fig 9
// (lsm engine, payload sweep).
func BenchmarkFig9LSMYCSB(b *testing.B) { benchTable(b, bench.Fig9LSM) }

// BenchmarkFig9AOFYCSB regenerates the Redis/YCSB-A panel of Fig 9
// (kvaof engine, payload sweep).
func BenchmarkFig9AOFYCSB(b *testing.B) { benchTable(b, bench.Fig9AOF) }

// BenchmarkFig10Architectures regenerates Fig 10: hybrid store versus
// heterogeneous memory (PM + block SSD), normalized throughput.
func BenchmarkFig10Architectures(b *testing.B) { benchTable(b, bench.Fig10) }

// BenchmarkCommitOverhead regenerates the "up to 26x" commit-overhead
// comparison (Section V-C).
func BenchmarkCommitOverhead(b *testing.B) { benchTable(b, bench.CommitOverhead) }

// BenchmarkWAFReduction regenerates the Section IV-A write-amplification
// comparison between block WAL and BA-WAL.
func BenchmarkWAFReduction(b *testing.B) { benchTable(b, bench.WAFReduction) }

// BenchmarkMixedWorkload regenerates the discussion-section check that
// block I/O is unaffected by concurrent memory-interface traffic.
func BenchmarkMixedWorkload(b *testing.B) { benchTable(b, bench.MixedWorkload) }

// BenchmarkRecoveryDump regenerates the power-loss dump/restore report
// (capacitor energy budget versus dump cost).
func BenchmarkRecoveryDump(b *testing.B) { benchTable(b, bench.Recovery) }

// BenchmarkTailLatency regenerates the commit-latency tail comparison
// (Section IV-A's "optimizes tail latencies").
func BenchmarkTailLatency(b *testing.B) { benchTable(b, bench.TailLatency) }

// BenchmarkSmallRead regenerates the Section VI bulk-write/small-read
// discussion experiment.
func BenchmarkSmallRead(b *testing.B) { benchTable(b, bench.SmallRead) }

// BenchmarkPMRComparison regenerates the Section VII extension: BA-WAL
// on the 2B-SSD versus on an NVMe PMR device (no internal datapath).
func BenchmarkPMRComparison(b *testing.B) { benchTable(b, bench.PMRComparison) }

// BenchmarkJournaling regenerates the file-system-journaling extension
// (Section IV's other motivating workload).
func BenchmarkJournaling(b *testing.B) { benchTable(b, bench.Journaling) }

// BenchmarkQueueDepth regenerates the queue-depth extension sweep.
func BenchmarkQueueDepth(b *testing.B) { benchTable(b, bench.QueueDepth) }

// BenchmarkAblationWriteCombining measures DESIGN.md ablation 4: MMIO
// write latency with and without write combining.
func BenchmarkAblationWriteCombining(b *testing.B) { benchTable(b, bench.AblationWriteCombining) }

// BenchmarkAblationDoubleBuffering measures DESIGN.md ablation 5:
// BA-WAL with and without double buffering.
func BenchmarkAblationDoubleBuffering(b *testing.B) { benchTable(b, bench.AblationDoubleBuffering) }

// BenchmarkAblationGroupCommit measures DESIGN.md ablation 7: group
// commit on the block-WAL baselines across client counts.
func BenchmarkAblationGroupCommit(b *testing.B) { benchTable(b, bench.AblationGroupCommit) }
