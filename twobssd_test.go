package twobssd_test

import (
	"bytes"
	"testing"

	"twobssd"
)

// TestPublicAPIEndToEnd exercises the whole dual-path story through
// the public facade only: block write, pin, MMIO append, sync, power
// cycle, recovery, flush, block read-back.
func TestPublicAPIEndToEnd(t *testing.T) {
	env := twobssd.NewEnv()
	ssd := twobssd.New(env, twobssd.DefaultConfig())
	fs := twobssd.NewFS(ssd.Device())

	env.Go("app", func(p *twobssd.Proc) {
		f, err := fs.Create("data", 1<<20)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := f.WriteAt(p, 0, []byte("block-written")); err != nil {
			t.Fatalf("block write: %v", err)
		}
		if err := ssd.BAPin(p, 0, 0, f.LBA(0), 2); err != nil {
			t.Fatalf("pin: %v", err)
		}
		if err := ssd.Mmio().Write(p, 13, []byte("+mmio")); err != nil {
			t.Fatalf("mmio write: %v", err)
		}
		if err := ssd.BASync(p, 0); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if _, err := ssd.PowerLoss(p); err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if err := ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		if err := ssd.BAFlush(p, 0); err != nil {
			t.Fatalf("flush: %v", err)
		}
		got := make([]byte, 18)
		if err := f.ReadAt(p, 0, got); err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, []byte("block-written+mmio")) {
			t.Fatalf("got %q", got)
		}
	})
	env.Run()
}

// TestPublicAPIWAL drives a BA-WAL through the facade.
func TestPublicAPIWAL(t *testing.T) {
	env := twobssd.NewEnv()
	ssd := twobssd.New(env, twobssd.DefaultConfig())
	fs := twobssd.NewFS(ssd.Device())

	env.Go("app", func(p *twobssd.Proc) {
		f, err := fs.Create("wal", 32<<20)
		if err != nil {
			t.Fatal(err)
		}
		log, err := twobssd.OpenWAL(env, twobssd.WALConfig{
			Mode: twobssd.BACommit, File: f,
			SegmentBytes: twobssd.DefaultConfig().BABufferBytes / 2,
			SSD:          ssd, EIDs: []twobssd.EID{0, 1}, DoubleBuffer: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		lsn, err := log.Append(p, []byte("txn"))
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Commit(p, lsn); err != nil {
			t.Fatal(err)
		}
		if log.DurableOff() != int64(lsn) {
			t.Fatal("commit did not advance durability")
		}
	})
	env.Run()
}

// TestPublicAPIDevices checks the comparison-device constructors.
func TestPublicAPIDevices(t *testing.T) {
	env := twobssd.NewEnv()
	dc := twobssd.NewDevice(env, twobssd.DCSSD())
	ull := twobssd.NewDevice(env, twobssd.ULLSSD())
	var dcLat, ullLat twobssd.Duration
	env.Go("t", func(p *twobssd.Proc) {
		buf := make([]byte, dc.PageSize())
		start := env.Now()
		dc.WritePages(p, 0, buf)
		dcLat = twobssd.Duration(env.Now() - start)
		start = env.Now()
		ull.WritePages(p, 0, buf)
		ullLat = twobssd.Duration(env.Now() - start)
	})
	env.Run()
	if ullLat >= dcLat {
		t.Fatalf("ULL write %v should beat DC %v", ullLat, dcLat)
	}
	if twobssd.DefaultSpec().CapacityGB != 800 {
		t.Fatal("spec wrong")
	}
}
